"""Pure-Python scalar implementation of :class:`ArrayBackend`.

This backend is the *sequential scalar reference* the paper measures
its GPU kernels against (Table VIII's "sequential algorithm on CPU"):
every array op is executed one element at a time with plain Python
floats.  It exists for two reasons:

* **oracle** — the kernels run the same code on this backend and on
  NumPy, and both are IEEE-754 double sequences with identical
  association and identical first-minimum tie-breaking, so the results
  must match *bit for bit*.  The equivalence suite asserts exactly
  that, which is far stronger evidence than a separate hand-written
  scalar DP (the pre-backend design) could give.
* **baseline** — ``benchmarks/bench_kernel_speedup.py`` measures the
  NumPy-vs-Python backend ratio as a true same-code-two-substrates
  speedup, the shape of the paper's GPU-vs-scalar-CPU comparison.

The device array is :class:`NDArray`: a flat row-major Python list plus
a shape tuple.  NumPy is used only inside ``asarray``/``to_numpy``
(host-side transfer glue), never for arithmetic.
"""

from __future__ import annotations

import math
from typing import Any, List, Sequence, Tuple

import numpy as np

from repro.backend.base import ArrayBackend

_CASTS = {"float": float, "int": int, "bool": bool}
_NP_DTYPES = {"float": float, "int": np.intp, "bool": bool}


def _strides(shape: Tuple[int, ...]) -> Tuple[int, ...]:
    """Row-major element strides for ``shape``."""
    strides = [1] * len(shape)
    for d in range(len(shape) - 2, -1, -1):
        strides[d] = strides[d + 1] * shape[d + 1]
    return tuple(strides)


class NDArray:
    """Minimal dense N-d array: flat list + shape, row-major."""

    __slots__ = ("data", "shape", "dtype")

    def __init__(self, data: List[Any], shape: Tuple[int, ...], dtype: str) -> None:
        self.data = data
        self.shape = shape
        self.dtype = dtype

    @property
    def size(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # debugging aid only
        return f"NDArray(shape={self.shape}, dtype={self.dtype})"


def _broadcast_shape(sa: Tuple[int, ...], sb: Tuple[int, ...]) -> Tuple[int, ...]:
    """NumPy broadcasting of two shapes (right-aligned)."""
    ndim = max(len(sa), len(sb))
    sa = (1,) * (ndim - len(sa)) + sa
    sb = (1,) * (ndim - len(sb)) + sb
    out = []
    for da, db in zip(sa, sb):
        if da == db or db == 1:
            out.append(da)
        elif da == 1:
            out.append(db)
        else:
            raise ValueError(f"cannot broadcast {sa} with {sb}")
    return tuple(out)


def _flat_indices(shape: Tuple[int, ...], out_shape: Tuple[int, ...]) -> List[int]:
    """Flat element indices of ``shape`` visited in ``out_shape`` order.

    ``shape`` must be broadcastable to ``out_shape``.  Dimensions of
    size 1 get stride 0, so the same element repeats — this is the
    whole of broadcasting, expressed as an index list.
    """
    ndim = len(out_shape)
    padded = (1,) * (ndim - len(shape)) + shape
    strides = _strides(padded)
    eff = [0 if padded[d] == 1 else strides[d] for d in range(ndim)]
    idx = [0]
    for d in range(ndim):
        stride, n = eff[d], out_shape[d]
        if n == 1:
            continue  # idx unchanged (stride contributes 0 offsets)
        if stride == 0:
            idx = [base for base in idx for _ in range(n)]
        else:
            idx = [base + k * stride for base in idx for k in range(n)]
    return idx


def _promote(da: str, db: str) -> str:
    for dtype in ("float", "int", "bool"):
        if da == dtype or db == dtype:
            return dtype
    raise ValueError(f"unknown dtypes {da!r}, {db!r}")


class PythonBackend(ArrayBackend):
    """One-element-at-a-time execution with plain Python scalars."""

    name = "python"

    # ------------------------------------------------------------------ #
    # Construction / transfer
    # ------------------------------------------------------------------ #
    def asarray(self, data: Any, dtype: str = "float") -> NDArray:
        if isinstance(data, NDArray):
            if data.dtype == dtype:
                return data
            cast = _CASTS[dtype]
            return NDArray([cast(v) for v in data.data], data.shape, dtype)
        host = np.asarray(data, dtype=_NP_DTYPES[dtype])
        return NDArray(host.ravel().tolist(), host.shape, dtype)

    def to_numpy(self, a: NDArray) -> np.ndarray:
        return np.array(a.data, dtype=_NP_DTYPES[a.dtype]).reshape(a.shape)

    def full(self, shape: Sequence[int], value: float) -> NDArray:
        shape = tuple(int(s) for s in shape)
        return NDArray([float(value)] * _size(shape), shape, "float")

    def zeros(self, shape: Sequence[int], dtype: str = "float") -> NDArray:
        shape = tuple(int(s) for s in shape)
        zero = _CASTS[dtype](0)
        return NDArray([zero] * _size(shape), shape, dtype)

    def arange(self, n: int) -> NDArray:
        return NDArray(list(range(n)), (n,), "int")

    # ------------------------------------------------------------------ #
    # Broadcasting machinery
    # ------------------------------------------------------------------ #
    def _coerce(self, a: Any) -> NDArray:
        if isinstance(a, NDArray):
            return a
        if isinstance(a, bool):
            return NDArray([a], (), "bool")
        if isinstance(a, int):
            return NDArray([a], (), "int")
        if isinstance(a, float):
            return NDArray([a], (), "float")
        return self.asarray(a)

    def _binary(self, a: Any, b: Any, op, dtype: str = None) -> NDArray:
        a, b = self._coerce(a), self._coerce(b)
        out_dtype = dtype or _promote(a.dtype, b.dtype)
        if a.shape == b.shape:
            data = [op(x, y) for x, y in zip(a.data, b.data)]
            return NDArray(data, a.shape, out_dtype)
        if a.shape == ():
            x = a.data[0]
            return NDArray([op(x, y) for y in b.data], b.shape, out_dtype)
        if b.shape == ():
            y = b.data[0]
            return NDArray([op(x, y) for x in a.data], a.shape, out_dtype)
        out_shape = _broadcast_shape(a.shape, b.shape)
        ia = _flat_indices(a.shape, out_shape)
        ib = _flat_indices(b.shape, out_shape)
        ad, bd = a.data, b.data
        data = [op(ad[i], bd[j]) for i, j in zip(ia, ib)]
        return NDArray(data, out_shape, out_dtype)

    # ------------------------------------------------------------------ #
    # Elementwise
    # ------------------------------------------------------------------ #
    def add(self, a, b):
        return self._binary(a, b, lambda x, y: x + y)

    def subtract(self, a, b):
        return self._binary(a, b, lambda x, y: x - y)

    def multiply(self, a, b):
        return self._binary(a, b, lambda x, y: x * y)

    def minimum(self, a, b):
        return self._binary(a, b, lambda x, y: x if x < y else y)

    def maximum(self, a, b):
        return self._binary(a, b, lambda x, y: x if x > y else y)

    def abs(self, a):
        a = self._coerce(a)
        return NDArray([x if x >= 0 else -x for x in a.data], a.shape, a.dtype)

    def where(self, cond, a, b):
        cond, a, b = self._coerce(cond), self._coerce(a), self._coerce(b)
        out_dtype = _promote(a.dtype, b.dtype)
        out_shape = _broadcast_shape(_broadcast_shape(cond.shape, a.shape), b.shape)
        ic = _flat_indices(cond.shape, out_shape)
        ia = _flat_indices(a.shape, out_shape)
        ib = _flat_indices(b.shape, out_shape)
        cd, ad, bd = cond.data, a.data, b.data
        data = [ad[i] if cd[c] else bd[j] for c, i, j in zip(ic, ia, ib)]
        return NDArray(data, out_shape, out_dtype)

    def less(self, a, b):
        return self._binary(a, b, lambda x, y: x < y, dtype="bool")

    def less_equal(self, a, b):
        return self._binary(a, b, lambda x, y: x <= y, dtype="bool")

    def greater_equal(self, a, b):
        return self._binary(a, b, lambda x, y: x >= y, dtype="bool")

    def equal(self, a, b):
        return self._binary(a, b, lambda x, y: x == y, dtype="bool")

    def logical_and(self, a, b):
        return self._binary(a, b, lambda x, y: bool(x and y), dtype="bool")

    def logical_or(self, a, b):
        return self._binary(a, b, lambda x, y: bool(x or y), dtype="bool")

    def isfinite(self, a):
        a = self._coerce(a)
        return NDArray([math.isfinite(x) for x in a.data], a.shape, "bool")

    def astype(self, a, dtype: str):
        return self.asarray(a, dtype=dtype)

    def floor_divide(self, a, k: int):
        a = self._coerce(a)
        return NDArray([x // k for x in a.data], a.shape, a.dtype)

    def mod(self, a, k: int):
        a = self._coerce(a)
        return NDArray([x % k for x in a.data], a.shape, a.dtype)

    # ------------------------------------------------------------------ #
    # Shape
    # ------------------------------------------------------------------ #
    def expand_dims(self, a, axis: int):
        a = self._coerce(a)
        ndim = len(a.shape) + 1
        if axis < 0:
            axis += ndim
        shape = a.shape[:axis] + (1,) + a.shape[axis:]
        return NDArray(a.data, shape, a.dtype)

    def reshape(self, a, shape: Sequence[int]):
        a = self._coerce(a)
        shape = tuple(int(s) for s in shape)
        if shape.count(-1) == 1:
            known = _size(tuple(s for s in shape if s != -1))
            shape = tuple(len(a.data) // max(known, 1) if s == -1 else s for s in shape)
        if _size(shape) != len(a.data):
            raise ValueError(f"cannot reshape {a.shape} into {shape}")
        return NDArray(a.data, shape, a.dtype)

    def flip(self, a, axis: int):
        a = self._coerce(a)
        outer, n, inner = self._axis_blocks(a, axis)
        data = a.data
        out: List[Any] = []
        for o in range(outer):
            base = o * n * inner
            for k in range(n - 1, -1, -1):
                pos = base + k * inner
                out.extend(data[pos : pos + inner])
        return NDArray(out, a.shape, a.dtype)

    def shape(self, a) -> Tuple[int, ...]:
        return self._coerce(a).shape

    def nbytes(self, a) -> int:
        a = self._coerce(a)
        # mirror NumPy payload sizes (float64/intp = 8 bytes, bool = 1)
        return len(a.data) * (1 if a.dtype == "bool" else 8)

    def copyto(self, dst, src) -> None:
        if not isinstance(dst, NDArray):
            raise TypeError("copyto destination must be a device NDArray")
        src = self.asarray(src, dtype=dst.dtype)
        if src.shape != dst.shape:
            raise ValueError(f"copyto shape mismatch {dst.shape} vs {src.shape}")
        dst.data[:] = src.data

    # ------------------------------------------------------------------ #
    # Reductions / scans
    # ------------------------------------------------------------------ #
    def _axis_blocks(self, a: NDArray, axis: int) -> Tuple[int, int, int]:
        """Decompose ``a`` as (outer, n, inner) around ``axis``."""
        if axis < 0:
            axis += len(a.shape)
        outer = _size(a.shape[:axis])
        n = a.shape[axis]
        inner = _size(a.shape[axis + 1 :])
        return outer, n, inner

    def min_argmin(self, a, axis: int):
        a = self._coerce(a)
        if axis < 0:
            axis += len(a.shape)
        outer, n, inner = self._axis_blocks(a, axis)
        out_shape = a.shape[:axis] + a.shape[axis + 1 :]
        values: List[float] = []
        args: List[int] = []
        data = a.data
        for o in range(outer):
            base = o * n * inner
            for i in range(inner):
                best = data[base + i]
                best_k = 0
                pos = base + i + inner
                for k in range(1, n):
                    v = data[pos]
                    if v < best:
                        best = v
                        best_k = k
                    pos += inner
                values.append(best)
                args.append(best_k)
        return (
            NDArray(values, out_shape, a.dtype),
            NDArray(args, out_shape, "int"),
        )

    def _scan(self, a, axis: int, op):
        a = self._coerce(a)
        outer, n, inner = self._axis_blocks(a, axis)
        data = list(a.data)
        for o in range(outer):
            base = o * n * inner
            for k in range(1, n):
                pos = base + k * inner
                prev = pos - inner
                for i in range(inner):
                    data[pos + i] = op(data[prev + i], data[pos + i])
        return NDArray(data, a.shape, a.dtype)

    def cumsum(self, a, axis: int):
        return self._scan(a, axis, lambda acc, v: acc + v)

    def cummin(self, a, axis: int):
        return self._scan(a, axis, lambda acc, v: acc if acc < v else v)

    # ------------------------------------------------------------------ #
    # Gather / scatter
    # ------------------------------------------------------------------ #
    def scatter_add(self, target, index, source) -> None:
        index = self._coerce(index)
        source = self._coerce(source)
        block = _size(target.shape[1:])
        tdata, sdata = target.data, source.data
        for c, row in enumerate(index.data):
            tbase = row * block
            sbase = c * block
            for off in range(block):
                tdata[tbase + off] += sdata[sbase + off]

    def select_rows(self, a, idx):
        a, idx = self._coerce(a), self._coerce(idx)
        b, c, n = a.shape
        data = a.data
        out = [
            data[(bb * c + idx.data[bb * n + nn]) * n + nn]
            for bb in range(b)
            for nn in range(n)
        ]
        return NDArray(out, (b, n), a.dtype)

    def gather_pairs(self, a, i, j):
        a, i, j = self._coerce(a), self._coerce(i), self._coerce(j)
        b, c, k = a.shape
        n = i.shape[1]
        data, idata, jdata = a.data, i.data, j.data
        out = [
            data[(bb * c + idata[bb * n + nn]) * k + jdata[bb * n + nn]]
            for bb in range(b)
            for nn in range(n)
        ]
        return NDArray(out, (b, n), a.dtype)

    def gather_points(self, a, x, y):
        a = self._coerce(a)
        x = self.asarray(x, dtype="int")
        y = self.asarray(y, dtype="int")
        n_layers, nx, ny = a.shape
        data = a.data
        out = [
            data[(l * nx + xv) * ny + yv]
            for xv, yv in zip(x.data, y.data)
            for l in range(n_layers)
        ]
        return NDArray(out, (len(x.data), n_layers), a.dtype)


def _size(shape: Tuple[int, ...]) -> int:
    total = 1
    for s in shape:
        total *= s
    return total


__all__ = ["NDArray", "PythonBackend"]
