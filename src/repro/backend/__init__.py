"""Pluggable array backends for the min-plus pattern kernels.

The kernels (:mod:`repro.pattern.kernels`), the wave drivers
(:mod:`repro.pattern.lshape` / ``zshape`` / ``hybrid``) and the
prefix-sum cost gathers (:mod:`repro.grid.cost`) are written once
against the :class:`ArrayBackend` protocol and run unchanged on every
registered backend:

* ``numpy`` — dense vectorised host execution (the default);
* ``python`` — pure-scalar reference, one element at a time (the
  sequential-CPU baseline and cross-backend bit-identity oracle);
* ``cupy`` — CUDA execution, auto-registered only when importable.

Select a backend with ``RouterConfig(backend=...)`` or the CLI's
``--backend`` flag; register new ones with :func:`register_backend`.
"""

from repro.backend.base import Array, ArrayBackend
from repro.backend.registry import (
    available_backends,
    get_backend,
    register_backend,
)

__all__ = [
    "Array",
    "ArrayBackend",
    "available_backends",
    "get_backend",
    "register_backend",
]
