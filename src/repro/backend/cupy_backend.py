"""CuPy implementation of :class:`ArrayBackend` (optional, GPU).

Registered only when ``cupy`` is importable — the reproduction
container has no GPU, so on most machines this module is never
imported.  The implementation mirrors :class:`NumpyBackend` op for op
(CuPy is NumPy-API compatible); ``asarray``/``to_numpy`` become real
host-to-device / device-to-host transfers.

Caveat: CuPy reductions may differ from NumPy by tie-breaking on some
dtypes and by ULPs for transcendental functions.  The kernels use
neither (only add/compare/min over float64), so the bit-identity
contract of :mod:`repro.backend.base` is expected to hold, but it is
machine-verified only where a GPU is present — the parity tests
parametrize over *registered* backends, so they pick cupy up
automatically on CUDA machines.
"""

from __future__ import annotations

from typing import Any, Sequence, Tuple

import cupy as cp  # noqa: F401 — import guarded by the registry

from repro.backend.base import ArrayBackend

_DTYPES = {"float": cp.float64, "int": cp.intp, "bool": cp.bool_}


class CupyBackend(ArrayBackend):
    """Dense vectorised execution on a CUDA device via CuPy."""

    name = "cupy"

    def asarray(self, data: Any, dtype: str = "float"):
        return cp.asarray(data, dtype=_DTYPES[dtype])

    def to_numpy(self, a):
        return cp.asnumpy(a)

    def full(self, shape: Sequence[int], value: float):
        return cp.full(tuple(shape), value, dtype=cp.float64)

    def zeros(self, shape: Sequence[int], dtype: str = "float"):
        return cp.zeros(tuple(shape), dtype=_DTYPES[dtype])

    def arange(self, n: int):
        return cp.arange(n, dtype=cp.intp)

    def add(self, a, b):
        return cp.add(a, b)

    def subtract(self, a, b):
        return cp.subtract(a, b)

    def multiply(self, a, b):
        return cp.multiply(a, b)

    def minimum(self, a, b):
        return cp.minimum(a, b)

    def maximum(self, a, b):
        return cp.maximum(a, b)

    def abs(self, a):
        return cp.abs(a)

    def where(self, cond, a, b):
        return cp.where(cond, a, b)

    def less(self, a, b):
        return cp.less(a, b)

    def less_equal(self, a, b):
        return cp.less_equal(a, b)

    def greater_equal(self, a, b):
        return cp.greater_equal(a, b)

    def equal(self, a, b):
        return cp.equal(a, b)

    def logical_and(self, a, b):
        return cp.logical_and(a, b)

    def logical_or(self, a, b):
        return cp.logical_or(a, b)

    def isfinite(self, a):
        return cp.isfinite(a)

    def astype(self, a, dtype: str):
        return cp.asarray(a).astype(_DTYPES[dtype])

    def floor_divide(self, a, k: int):
        return cp.asarray(a) // k

    def mod(self, a, k: int):
        return cp.asarray(a) % k

    def expand_dims(self, a, axis: int):
        return cp.expand_dims(a, axis)

    def reshape(self, a, shape: Sequence[int]):
        return cp.reshape(a, tuple(shape))

    def flip(self, a, axis: int):
        return cp.flip(a, axis)

    def shape(self, a) -> Tuple[int, ...]:
        return tuple(a.shape)

    def nbytes(self, a) -> int:
        return int(cp.asarray(a).nbytes)

    def copyto(self, dst, src) -> None:
        src = cp.asarray(src)
        if tuple(dst.shape) != tuple(src.shape):
            raise ValueError(
                f"copyto shape mismatch {tuple(dst.shape)} vs {tuple(src.shape)}"
            )
        cp.copyto(dst, src)

    def min_argmin(self, a, axis: int):
        a = cp.asarray(a)
        arg = a.argmin(axis=axis)
        values = cp.take_along_axis(a, cp.expand_dims(arg, axis), axis=axis)
        return cp.squeeze(values, axis=axis), arg

    def cumsum(self, a, axis: int):
        return cp.cumsum(a, axis=axis)

    def cummin(self, a, axis: int):
        return cp.minimum.accumulate(a, axis=axis)

    def scatter_add(self, target, index, source) -> None:
        cp.add.at(target, cp.asarray(index, dtype=cp.intp), source)

    def select_rows(self, a, idx):
        a = cp.asarray(a)
        picked = cp.take_along_axis(a, cp.asarray(idx)[:, None, :], axis=1)
        return picked[:, 0, :]

    def gather_pairs(self, a, i, j):
        a = cp.asarray(a)
        batch = cp.arange(a.shape[0])[:, None]
        return a[batch, cp.asarray(i), cp.asarray(j)]

    def gather_points(self, a, x, y):
        a = cp.asarray(a)
        return a[:, cp.asarray(x, dtype=cp.intp), cp.asarray(y, dtype=cp.intp)].T


__all__ = ["CupyBackend"]
