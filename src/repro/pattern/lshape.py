"""GPU-friendly 3-D L-shape pattern routing (Sec. III-D, Fig. 8).

For a two-pin net ``Ps -> Pt`` there are two candidate bend points in
2-D (``(xt, ys)`` and ``(xs, yt)``); in 3-D every ``(ls, lt)`` layer
pair is a candidate path ``P{Ps, B_ls, T_lt}`` with cost Eq. 1.  The
whole wave of two-pin nets is priced with four prefix-sum gathers and
one :func:`~repro.pattern.kernels.minplus_two_bend` call — the paper's
Eq. 5–7 computation graph flow, batched.

All array work runs on ``query.backend``; this driver owns the
host↔device boundary (``values``/backtracks come back as NumPy).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.grid.cost import CostQuery
from repro.pattern.kernels import minplus_two_bend
from repro.pattern.twopin import EdgeBacktrack, PatternMode, TwoPinTask


def lshape_bends(task: TwoPinTask) -> Tuple[Tuple[int, int], Tuple[int, int]]:
    """Return the two candidate bend points of a two-pin net.

    Bend 0 routes the first segment horizontally (``B = (xt, ys)``);
    bend 1 routes it vertically (``B = (xs, yt)``).  For straight or
    degenerate nets the bends coincide with an endpoint and one segment
    is empty — the kernels price empty segments at zero on every layer.
    """
    return (task.dst.x, task.src.y), (task.src.x, task.dst.y)


def route_lshape_wave(
    tasks: List[TwoPinTask],
    combine: np.ndarray,
    query: CostQuery,
) -> Tuple[np.ndarray, List[EdgeBacktrack]]:
    """Price a wave of L-shape two-pin nets.

    Parameters
    ----------
    tasks:
        The wave's two-pin nets (any mode — the L kernel is also the
        fallback for degenerate hybrid nets).
    combine:
        ``(B, L)`` bottom-children costs ``cbc`` at each task's source
        node (Eq. 2), already including pin via stacks.
    query:
        The frozen cost snapshot of the current scheduler batch.

    Returns
    -------
    values, backtracks:
        ``values[b, lt] = c*(Ps, Pt, lt)`` (Eq. 7) and per-task argmin
        state, both back on the host.
    """
    n_tasks = len(tasks)
    n_layers = query.n_layers
    if n_tasks == 0:
        return np.zeros((0, n_layers)), []
    xp = query.backend

    xs = np.array([t.src.x for t in tasks])
    ys = np.array([t.src.y for t in tasks])
    xt = np.array([t.dst.x for t in tasks])
    yt = np.array([t.dst.y for t in tasks])

    combine_dev = xp.asarray(combine)
    # Bend 0: Ps --H--> (xt, ys) --V--> Pt.
    w1_a = xp.add(combine_dev, query.segment_cost_layers(xs, ys, xt, ys))
    mat_a = xp.add(
        query.via_matrix(xt, ys),
        xp.expand_dims(query.segment_cost_layers(xt, ys, xt, yt), 1),
    )
    # Bend 1: Ps --V--> (xs, yt) --H--> Pt.
    w1_b = xp.add(combine_dev, query.segment_cost_layers(xs, ys, xs, yt))
    mat_b = xp.add(
        query.via_matrix(xs, yt),
        xp.expand_dims(query.segment_cost_layers(xs, yt, xt, yt), 1),
    )

    values, bend_choice, arg_ls = minplus_two_bend(w1_a, mat_a, w1_b, mat_b, xp=xp)
    values = xp.to_numpy(values)
    bend_choice = xp.to_numpy(bend_choice)
    arg_ls = xp.to_numpy(arg_ls)
    backtracks = [
        EdgeBacktrack(
            mode=PatternMode.LSHAPE,
            arg_ls=arg_ls[i],
            bend_choice=bend_choice[i],
        )
        for i in range(n_tasks)
    ]
    return values, backtracks


__all__ = ["lshape_bends", "route_lshape_wave"]
