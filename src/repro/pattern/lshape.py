"""GPU-friendly 3-D L-shape pattern routing (Sec. III-D, Fig. 8).

For a two-pin net ``Ps -> Pt`` there are two candidate bend points in
2-D (``(xt, ys)`` and ``(xs, yt)``); in 3-D every ``(ls, lt)`` layer
pair is a candidate path ``P{Ps, B_ls, T_lt}`` with cost Eq. 1.  The
whole wave of two-pin nets is priced with four prefix-sum gathers and
one :func:`~repro.pattern.kernels.minplus_two_bend` call — the paper's
Eq. 5–7 computation graph flow, batched.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.grid.cost import CostQuery
from repro.pattern.kernels import minplus_two_bend
from repro.pattern.twopin import EdgeBacktrack, PatternMode, TwoPinTask


def lshape_bends(task: TwoPinTask) -> Tuple[Tuple[int, int], Tuple[int, int]]:
    """Return the two candidate bend points of a two-pin net.

    Bend 0 routes the first segment horizontally (``B = (xt, ys)``);
    bend 1 routes it vertically (``B = (xs, yt)``).  For straight or
    degenerate nets the bends coincide with an endpoint and one segment
    is empty — the kernels price empty segments at zero on every layer.
    """
    return (task.dst.x, task.src.y), (task.src.x, task.dst.y)


def route_lshape_wave(
    tasks: List[TwoPinTask],
    combine: np.ndarray,
    query: CostQuery,
) -> Tuple[np.ndarray, List[EdgeBacktrack], int]:
    """Price a wave of L-shape two-pin nets.

    Parameters
    ----------
    tasks:
        The wave's two-pin nets (any mode — the L kernel is also the
        fallback for degenerate hybrid nets).
    combine:
        ``(B, L)`` bottom-children costs ``cbc`` at each task's source
        node (Eq. 2), already including pin via stacks.
    query:
        The frozen cost snapshot of the current scheduler batch.

    Returns
    -------
    values, backtracks, elements:
        ``values[b, lt] = c*(Ps, Pt, lt)`` (Eq. 7); per-task argmin
        state; and the elementwise work performed (for the device's
        launch accounting).
    """
    n_tasks = len(tasks)
    n_layers = query.n_layers
    if n_tasks == 0:
        return np.zeros((0, n_layers)), [], 0

    xs = np.array([t.src.x for t in tasks])
    ys = np.array([t.src.y for t in tasks])
    xt = np.array([t.dst.x for t in tasks])
    yt = np.array([t.dst.y for t in tasks])

    # Bend 0: Ps --H--> (xt, ys) --V--> Pt.
    w1_a = combine + query.segment_cost_layers(xs, ys, xt, ys)
    mat_a = query.via_matrix(xt, ys) + query.segment_cost_layers(xt, ys, xt, yt)[:, None, :]
    # Bend 1: Ps --V--> (xs, yt) --H--> Pt.
    w1_b = combine + query.segment_cost_layers(xs, ys, xs, yt)
    mat_b = query.via_matrix(xs, yt) + query.segment_cost_layers(xs, yt, xt, yt)[:, None, :]

    values, bend_choice, arg_ls = minplus_two_bend(w1_a, mat_a, w1_b, mat_b)
    backtracks = [
        EdgeBacktrack(
            mode=PatternMode.LSHAPE,
            arg_ls=arg_ls[i],
            bend_choice=bend_choice[i],
        )
        for i in range(n_tasks)
    ]
    elements = n_tasks * 2 * n_layers * n_layers
    return values, backtracks, elements


__all__ = ["lshape_bends", "route_lshape_wave"]
