"""Path reconstruction: turn DP argmin state back into routed geometry.

After the kernels fill a :class:`~repro.pattern.twopin.NetRoutingJob`
with cost vectors and argmins, this module walks the tree top-down from
the root, choosing each child's arrival layer inside the parent's via
stack and expanding every two-pin net's winning pattern into wire and
via segments.  The raw geometry is then *normalised*: overlapping
segments from sibling paths are fused at unit-edge granularity, so a
net never double-counts demand on a shared edge.
"""

from __future__ import annotations

from typing import List, Set, Tuple

import numpy as np

from repro.grid.geometry import Point
from repro.grid.route import Route, ViaSegment, WireSegment
from repro.pattern.twopin import NetRoutingJob, PatternMode


def best_layer_in_interval(vector: np.ndarray, lo: int, hi: int) -> int:
    """Return the argmin layer of ``vector`` restricted to ``[lo, hi]``."""
    if lo > hi:
        raise ValueError("empty layer interval")
    return lo + int(np.argmin(vector[lo : hi + 1]))


def _emit_wire(route: Route, a: Point, b: Point, layer: int) -> None:
    if a == b:
        return
    route.add_wire(WireSegment(layer, a.x, a.y, b.x, b.y))


def _emit_via(route: Route, p: Point, lo: int, hi: int) -> None:
    if lo > hi:
        lo, hi = hi, lo
    if lo == hi:
        return
    route.add_via(ViaSegment(p.x, p.y, lo, hi))


def reconstruct_route(job: NetRoutingJob) -> Route:
    """Rebuild the routed geometry of a completed job (normalised)."""
    route = Route()
    tree, ordered = job.tree, job.ordered

    if ordered.n_two_pin_nets == 0:
        # Single-G-cell net: a via stack covering the pin layers.
        lo, hi = job.root_interval
        _emit_via(route, tree.nodes[ordered.root].point, lo, hi)
        return normalize_route(route)

    lo, hi = job.root_interval
    _emit_via(route, tree.nodes[ordered.root].point, lo, hi)
    pending: List[Tuple[int, int]] = []
    for child in ordered.children(ordered.root):
        pending.append((child, best_layer_in_interval(job.node_vectors[child], lo, hi)))

    while pending:
        node, arrival = pending.pop()
        state = job.edge_store[node]
        src = tree.nodes[node].point
        dst = tree.nodes[ordered.parent[node]].point

        if state.mode is PatternMode.LSHAPE:
            source_layer = int(state.arg_ls[arrival])
            bend_idx = int(state.bend_choice[arrival])
            bend = Point(dst.x, src.y) if bend_idx == 0 else Point(src.x, dst.y)
            _emit_wire(route, src, bend, source_layer)
            _emit_via(route, bend, source_layer, arrival)
            _emit_wire(route, bend, dst, arrival)
        else:
            cand = int(state.cand[arrival])
            mid_layer = int(state.arg_lb[arrival])
            source_layer = int(state.arg_ls[arrival])
            bsx, bsy, btx, bty = (int(v) for v in state.cand_geometry[cand])
            bend_s, bend_t = Point(bsx, bsy), Point(btx, bty)
            _emit_wire(route, src, bend_s, source_layer)
            _emit_via(route, bend_s, source_layer, mid_layer)
            _emit_wire(route, bend_s, bend_t, mid_layer)
            _emit_via(route, bend_t, mid_layer, arrival)
            _emit_wire(route, bend_t, dst, arrival)

        lo_c, hi_c = job.combine_store[node]
        stack_lo = int(lo_c[source_layer])
        stack_hi = int(hi_c[source_layer])
        _emit_via(route, src, stack_lo, stack_hi)
        for child in ordered.children(node):
            pending.append(
                (child, best_layer_in_interval(job.node_vectors[child], stack_lo, stack_hi))
            )
    return normalize_route(route)


# ---------------------------------------------------------------------- #
# Normalisation
# ---------------------------------------------------------------------- #
def normalize_route(route: Route) -> Route:
    """Fuse overlapping geometry at unit-edge granularity.

    Sibling two-pin paths of a net may share grid edges (e.g. both run
    through the parent node); a net occupies each routing-graph edge
    once, so duplicates must collapse before demand is committed.
    """
    h_edges: Set[Tuple[int, int, int]] = set()  # (layer, x, y): (x,y)-(x+1,y)
    v_edges: Set[Tuple[int, int, int]] = set()  # (layer, x, y): (x,y)-(x,y+1)
    for wire in route.wires:
        if wire.is_horizontal:
            for x in range(wire.x1, wire.x2):
                h_edges.add((wire.layer, x, wire.y1))
        else:
            for y in range(wire.y1, wire.y2):
                v_edges.add((wire.layer, wire.x1, y))
    via_edges: Set[Tuple[int, int, int]] = set()  # (x, y, l): layer l - l+1
    for via in route.vias:
        for layer in range(via.lo, via.hi):
            via_edges.add((via.x, via.y, layer))

    result = Route()
    _merge_runs(
        sorted(h_edges, key=lambda e: (e[0], e[2], e[1])),
        key=lambda e: (e[0], e[2]),
        coord=lambda e: e[1],
        emit=lambda e, lo, hi: result.add_wire(
            WireSegment(e[0], lo, e[2], hi + 1, e[2])
        ),
    )
    _merge_runs(
        sorted(v_edges),
        key=lambda e: (e[0], e[1]),
        coord=lambda e: e[2],
        emit=lambda e, lo, hi: result.add_wire(
            WireSegment(e[0], e[1], lo, e[1], hi + 1)
        ),
    )
    _merge_runs(
        sorted(via_edges),
        key=lambda e: (e[0], e[1]),
        coord=lambda e: e[2],
        emit=lambda e, lo, hi: result.add_via(ViaSegment(e[0], e[1], lo, hi + 1)),
    )
    return result


def _merge_runs(items, key, coord, emit) -> None:
    """Group sorted unit elements by ``key`` and fuse consecutive runs."""
    run_start = None
    prev = None
    prev_item = None
    for item in items:
        if prev_item is not None and key(item) == key(prev_item) and coord(item) == prev + 1:
            prev = coord(item)
            prev_item = item
            continue
        if prev_item is not None:
            emit(prev_item, run_start, prev)
        run_start = coord(item)
        prev = coord(item)
        prev_item = item
    if prev_item is not None:
        emit(prev_item, run_start, prev)


__all__ = ["best_layer_in_interval", "reconstruct_route", "normalize_route"]
