"""Dense min-plus kernels: the paper's computation-graph flows.

Every function here is a pure array transformation — no grid, net or
tree objects — mirroring what the CUDA kernels compute on device:

* :func:`minplus_vec_mat` is Eq. 7: ``c*(lt) = min_ls (w1[ls] + W2[ls, lt])``;
* :func:`minplus_two_bend` evaluates both L-shape bends and merges;
* :func:`zshape_reduce` is Eq. 14 plus the merge step of Eq. 10:
  ``c*(lt) = min_i min_{ls, lb} (w1[i, ls] + W2[i, ls, lb] + W3[i, lb, lt])``;
* :func:`combine_children` is the exact via-stack form of the bottom
  children cost, Eq. 2 (see DESIGN.md Sec. 5): enumerate via-stack
  intervals ``[lo, hi]`` and charge every child its best layer inside.

All kernels carry batch dimensions so one call covers every two-pin net
of a wave (lock-step lanes on the simulated device); all return argmins
for path reconstruction.

The kernels are written once against the :class:`ArrayBackend`
protocol and run unchanged on every registered backend — pass ``xp``
to choose one (default: the ``numpy`` backend).  Inputs may be host
arrays or backend arrays; outputs are backend arrays, so callers own
the ``to_numpy`` boundary.  Every op is a fixed-association IEEE-754
double add/subtract/compare, so all backends produce bit-identical
costs and argmins (see :mod:`repro.backend.base`).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.backend import ArrayBackend, get_backend

INF = float("inf")

# Finite stand-in for "unreachable" inside summed child tables: real
# infinities would poison the via-stack sums of *other* intervals via
# inf - inf = nan.  Any interval containing one of these can never win.
_UNREACHABLE = 1e18


def _xp(backend: Optional[ArrayBackend]) -> ArrayBackend:
    return backend if backend is not None else get_backend("numpy")


def interval_min(costs, xp: Optional[ArrayBackend] = None):
    """Return ``M[..., lo, hi] = min(costs[..., lo..hi])`` (inf for lo > hi).

    ``costs`` has shape ``(..., L)``; the result appends an ``(L, L)``
    upper-triangular interval table.
    """
    xp = _xp(xp)
    costs = xp.asarray(costs)
    length = xp.shape(costs)[-1]
    layers = xp.arange(length)
    # T[..., lo, k] = costs[..., k] where lo <= k else inf; a running
    # min over k then yields M[..., lo, hi] in one scan.
    lo_covers = xp.less_equal(xp.expand_dims(layers, 1), xp.expand_dims(layers, 0))
    masked = xp.where(lo_covers, xp.expand_dims(costs, -2), INF)
    return xp.cummin(masked, axis=-1)


def combine_children(
    child_costs,
    child_node_index,
    n_nodes: int,
    via_prefix,
    pin_lo,
    pin_hi,
    xp: Optional[ArrayBackend] = None,
) -> Tuple[object, object, object]:
    """Combine children cost vectors at a wave of tree nodes (Eq. 2, exact).

    At each node a via stack ``[lo, hi]`` must cover the departure layer
    ``ls``, every pin at the node, and the arrival layer chosen for each
    child; each child pays its cheapest layer inside the stack.

    Parameters
    ----------
    child_costs:
        ``(C, L)`` — stacked ``c*`` vectors of all children in the wave.
    child_node_index:
        ``(C,)`` — row ``c`` belongs to wave-node ``child_node_index[c]``.
    n_nodes:
        Number of wave nodes ``B``.
    via_prefix:
        ``(B, L)`` — cumulative via cost at each node's G-cell
        (:meth:`repro.grid.cost.CostQuery.via_prefix_at`).
    pin_lo, pin_hi:
        ``(B,)`` — min/max pin layer at each node.  For a node without
        pins pass ``pin_lo = L`` and ``pin_hi = -1`` (no constraint).

    Returns
    -------
    combine, lo_choice, hi_choice:
        ``(B, L)`` each: ``combine[b, ls]`` is the bottom-children cost
        ``cbc`` for departure layer ``ls``; ``lo/hi_choice`` the argmin
        via-stack interval.
    """
    xp = _xp(xp)
    via_prefix = xp.asarray(via_prefix)
    n_layers = xp.shape(via_prefix)[-1]
    if n_nodes == 0:
        empty = xp.zeros((0, n_layers))
        empty_int = xp.zeros((0, n_layers), dtype="int")
        return empty, empty_int, empty_int

    child_costs = xp.asarray(child_costs)

    # S[b, lo, hi] = sum over children of min cost inside [lo, hi].
    child_sum = xp.zeros((n_nodes, n_layers, n_layers))
    if xp.shape(child_costs)[0]:
        tables = interval_min(child_costs, xp=xp)  # (C, L, L)
        tables = xp.where(xp.isfinite(tables), tables, _UNREACHABLE)
        xp.scatter_add(child_sum, xp.asarray(child_node_index, dtype="int"), tables)

    # V[b, lo, hi] = via-stack cost, defined on lo <= hi only.
    layers = xp.arange(n_layers)
    lo_idx = xp.expand_dims(layers, 1)  # (L, 1)
    hi_idx = xp.expand_dims(layers, 0)  # (1, L)
    stack_cost = xp.subtract(
        xp.expand_dims(via_prefix, 1), xp.expand_dims(via_prefix, 2)
    )  # (B, lo, hi)
    upper = xp.less_equal(lo_idx, hi_idx)
    total = xp.where(upper, xp.add(stack_cost, child_sum), INF)  # (B, L, L)

    # Feasibility per departure layer ls: lo <= min(ls, pin_lo), hi >= max(ls, pin_hi).
    pin_lo = xp.asarray(pin_lo, dtype="int")
    pin_hi = xp.asarray(pin_hi, dtype="int")
    need_lo = xp.minimum(xp.expand_dims(layers, 0), xp.expand_dims(pin_lo, 1))  # (B, L)
    need_hi = xp.maximum(xp.expand_dims(layers, 0), xp.expand_dims(pin_hi, 1))  # (B, L)
    lo_ok = xp.less_equal(
        xp.reshape(layers, (1, 1, n_layers, 1)),
        xp.expand_dims(xp.expand_dims(need_lo, 2), 3),
    )
    hi_ok = xp.greater_equal(
        xp.reshape(layers, (1, 1, 1, n_layers)),
        xp.expand_dims(xp.expand_dims(need_hi, 2), 3),
    )
    feasible = xp.logical_and(lo_ok, hi_ok)  # (B, ls, lo, hi)
    masked = xp.where(feasible, xp.expand_dims(total, 1), INF)
    flat = xp.reshape(masked, (n_nodes, n_layers, n_layers * n_layers))
    combine, best = xp.min_argmin(flat, axis=2)  # (B, L)
    lo_choice = xp.floor_divide(best, n_layers)
    hi_choice = xp.mod(best, n_layers)
    return combine, lo_choice, hi_choice


def minplus_vec_mat(w1, mat, xp: Optional[ArrayBackend] = None) -> Tuple[object, object]:
    """Eq. 7: ``R[b, lt] = min_ls (w1[b, ls] + mat[b, ls, lt])``.

    Returns ``(R, arg_ls)`` with shapes ``(B, L)``.
    """
    xp = _xp(xp)
    total = xp.add(xp.expand_dims(xp.asarray(w1), 2), xp.asarray(mat))  # (B, ls, lt)
    values, arg_ls = xp.min_argmin(total, axis=1)
    return values, arg_ls


def minplus_two_bend(
    w1a,
    mat_a,
    w1b,
    mat_b,
    xp: Optional[ArrayBackend] = None,
) -> Tuple[object, object, object]:
    """Evaluate both L-shape bend choices and merge elementwise.

    Returns ``(R, bend_choice, arg_ls)`` with shapes ``(B, L)``;
    ``bend_choice`` is 0 for the first bend, 1 for the second.
    """
    xp = _xp(xp)
    values_a, arg_a = minplus_vec_mat(w1a, mat_a, xp=xp)
    values_b, arg_b = minplus_vec_mat(w1b, mat_b, xp=xp)
    use_b = xp.less(values_b, values_a)
    values = xp.where(use_b, values_b, values_a)
    arg_ls = xp.where(use_b, arg_b, arg_a)
    return values, xp.astype(use_b, "int"), arg_ls


def zshape_reduce(
    w1,
    mat2,
    mat3,
    valid,
    xp: Optional[ArrayBackend] = None,
) -> Tuple[object, object, object, object]:
    """Eq. 14 + merge (Eq. 10) over padded candidate flows.

    Parameters
    ----------
    w1:
        ``(B, C, L)`` — ``cbc + first-segment`` cost per candidate.
    mat2:
        ``(B, C, L, L)`` — source-bend via + middle-segment cost (Eq. 12).
    mat3:
        ``(B, C, L, L)`` — target-bend via + last-segment cost (Eq. 13).
    valid:
        ``(B, C)`` bool — False marks padding candidates.

    Returns
    -------
    R, cand, arg_lb, arg_ls:
        all ``(B, L)``: cost per target layer, winning candidate index,
        and its middle/source layers.
    """
    xp = _xp(xp)
    w1 = xp.asarray(w1)
    step1 = xp.add(xp.expand_dims(w1, 3), xp.asarray(mat2))  # (B, C, ls, lb)
    step1_min, arg_ls_full = xp.min_argmin(step1, axis=2)  # (B, C, lb)

    step2 = xp.add(xp.expand_dims(step1_min, 3), xp.asarray(mat3))  # (B, C, lb, lt)
    step2_min, arg_lb_full = xp.min_argmin(step2, axis=2)  # (B, C, lt)

    masked = xp.where(xp.expand_dims(xp.asarray(valid, dtype="bool"), 2), step2_min, INF)
    values, cand = xp.min_argmin(masked, axis=1)  # (B, lt)

    # Gather the winning candidate's middle and source layers.
    arg_lb = xp.select_rows(arg_lb_full, cand)  # (B, lt)
    arg_ls = xp.gather_pairs(arg_ls_full, cand, arg_lb)  # (B, lt)
    return values, cand, arg_lb, arg_ls


__all__ = [
    "INF",
    "interval_min",
    "combine_children",
    "minplus_vec_mat",
    "minplus_two_bend",
    "zshape_reduce",
]
