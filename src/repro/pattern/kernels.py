"""Dense min-plus kernels: the paper's computation-graph flows.

Every function here is a pure array transformation — no grid, net or
tree objects — mirroring what the CUDA kernels compute on device:

* :func:`minplus_vec_mat` is Eq. 7: ``c*(lt) = min_ls (w1[ls] + W2[ls, lt])``;
* :func:`minplus_two_bend` evaluates both L-shape bends and merges;
* :func:`zshape_reduce` is Eq. 14 plus the merge step of Eq. 10:
  ``c*(lt) = min_i min_{ls, lb} (w1[i, ls] + W2[i, ls, lb] + W3[i, lb, lt])``;
* :func:`combine_children` is the exact via-stack form of the bottom
  children cost, Eq. 2 (see DESIGN.md Sec. 5): enumerate via-stack
  intervals ``[lo, hi]`` and charge every child its best layer inside.

All kernels carry batch dimensions so one call covers every two-pin net
of a wave (lock-step lanes on the simulated device); all return argmins
for path reconstruction.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

INF = np.inf


def interval_min(costs: np.ndarray) -> np.ndarray:
    """Return ``M[..., lo, hi] = min(costs[..., lo..hi])`` (inf for lo > hi).

    ``costs`` has shape ``(..., L)``; the result appends an ``(L, L)``
    upper-triangular interval table.
    """
    costs = np.asarray(costs, dtype=float)
    length = costs.shape[-1]
    out = np.full(costs.shape[:-1] + (length, length), INF)
    idx = np.arange(length)
    out[..., idx, idx] = costs
    for hi in range(1, length):
        out[..., :hi, hi] = np.minimum(out[..., :hi, hi - 1], costs[..., None, hi])
    return out


def combine_children(
    child_costs: np.ndarray,
    child_node_index: np.ndarray,
    n_nodes: int,
    via_prefix: np.ndarray,
    pin_lo: np.ndarray,
    pin_hi: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Combine children cost vectors at a wave of tree nodes (Eq. 2, exact).

    At each node a via stack ``[lo, hi]`` must cover the departure layer
    ``ls``, every pin at the node, and the arrival layer chosen for each
    child; each child pays its cheapest layer inside the stack.

    Parameters
    ----------
    child_costs:
        ``(C, L)`` — stacked ``c*`` vectors of all children in the wave.
    child_node_index:
        ``(C,)`` — row ``c`` belongs to wave-node ``child_node_index[c]``.
    n_nodes:
        Number of wave nodes ``B``.
    via_prefix:
        ``(B, L)`` — cumulative via cost at each node's G-cell
        (:meth:`repro.grid.cost.CostQuery.via_prefix_at`).
    pin_lo, pin_hi:
        ``(B,)`` — min/max pin layer at each node.  For a node without
        pins pass ``pin_lo = L`` and ``pin_hi = -1`` (no constraint).

    Returns
    -------
    combine, lo_choice, hi_choice:
        ``(B, L)`` each: ``combine[b, ls]`` is the bottom-children cost
        ``cbc`` for departure layer ``ls``; ``lo/hi_choice`` the argmin
        via-stack interval.
    """
    child_costs = np.asarray(child_costs, dtype=float)
    via_prefix = np.asarray(via_prefix, dtype=float)
    n_layers = via_prefix.shape[1]
    if n_nodes == 0:
        empty = np.zeros((0, n_layers))
        return empty, empty.astype(int), empty.astype(int)

    # S[b, lo, hi] = sum over children of min cost inside [lo, hi].
    child_sum = np.zeros((n_nodes, n_layers, n_layers))
    if child_costs.shape[0]:
        tables = interval_min(child_costs)  # (C, L, L)
        tables = np.where(np.isfinite(tables), tables, 1e18)  # keep sums finite
        np.add.at(child_sum, np.asarray(child_node_index, dtype=int), tables)

    # V[b, lo, hi] = via-stack cost, defined on lo <= hi only.
    stack_cost = via_prefix[:, None, :] - via_prefix[:, :, None]  # (B, lo, hi)
    lo_idx = np.arange(n_layers)[:, None]
    hi_idx = np.arange(n_layers)[None, :]
    upper = lo_idx <= hi_idx
    total = np.where(upper, stack_cost + child_sum, INF)  # (B, L, L)

    # Feasibility per departure layer ls: lo <= min(ls, pin_lo), hi >= max(ls, pin_hi).
    ls_idx = np.arange(n_layers)
    need_lo = np.minimum(ls_idx[None, :], np.asarray(pin_lo, dtype=int)[:, None])  # (B, L)
    need_hi = np.maximum(ls_idx[None, :], np.asarray(pin_hi, dtype=int)[:, None])  # (B, L)
    feasible = (lo_idx[None, None] <= need_lo[:, :, None, None]) & (
        hi_idx[None, None] >= need_hi[:, :, None, None]
    )  # (B, L, L, L) over (b, ls, lo, hi)
    masked = np.where(feasible, total[:, None, :, :], INF)
    flat = masked.reshape(n_nodes, n_layers, n_layers * n_layers)
    best = flat.argmin(axis=2)  # (B, L)
    combine = np.take_along_axis(flat, best[:, :, None], axis=2)[:, :, 0]
    lo_choice = best // n_layers
    hi_choice = best % n_layers
    return combine, lo_choice, hi_choice


def minplus_vec_mat(w1: np.ndarray, mat: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Eq. 7: ``R[b, lt] = min_ls (w1[b, ls] + mat[b, ls, lt])``.

    Returns ``(R, arg_ls)`` with shapes ``(B, L)``.
    """
    total = w1[:, :, None] + mat  # (B, ls, lt)
    arg_ls = total.argmin(axis=1)
    values = np.take_along_axis(total, arg_ls[:, None, :], axis=1)[:, 0, :]
    return values, arg_ls


def minplus_two_bend(
    w1a: np.ndarray,
    mat_a: np.ndarray,
    w1b: np.ndarray,
    mat_b: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Evaluate both L-shape bend choices and merge elementwise.

    Returns ``(R, bend_choice, arg_ls)`` with shapes ``(B, L)``;
    ``bend_choice`` is 0 for the first bend, 1 for the second.
    """
    values_a, arg_a = minplus_vec_mat(w1a, mat_a)
    values_b, arg_b = minplus_vec_mat(w1b, mat_b)
    use_b = values_b < values_a
    values = np.where(use_b, values_b, values_a)
    arg_ls = np.where(use_b, arg_b, arg_a)
    return values, use_b.astype(int), arg_ls


def zshape_reduce(
    w1: np.ndarray,
    mat2: np.ndarray,
    mat3: np.ndarray,
    valid: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Eq. 14 + merge (Eq. 10) over padded candidate flows.

    Parameters
    ----------
    w1:
        ``(B, C, L)`` — ``cbc + first-segment`` cost per candidate.
    mat2:
        ``(B, C, L, L)`` — source-bend via + middle-segment cost (Eq. 12).
    mat3:
        ``(B, C, L, L)`` — target-bend via + last-segment cost (Eq. 13).
    valid:
        ``(B, C)`` bool — False marks padding candidates.

    Returns
    -------
    R, cand, arg_lb, arg_ls:
        all ``(B, L)``: cost per target layer, winning candidate index,
        and its middle/source layers.
    """
    step1 = w1[:, :, :, None] + mat2  # (B, C, ls, lb)
    arg_ls_full = step1.argmin(axis=2)  # (B, C, lb)
    step1_min = np.take_along_axis(step1, arg_ls_full[:, :, None, :], axis=2)[:, :, 0, :]

    step2 = step1_min[:, :, :, None] + mat3  # (B, C, lb, lt)
    arg_lb_full = step2.argmin(axis=2)  # (B, C, lt)
    step2_min = np.take_along_axis(step2, arg_lb_full[:, :, None, :], axis=2)[:, :, 0, :]

    step2_min = np.where(valid[:, :, None], step2_min, INF)
    cand = step2_min.argmin(axis=1)  # (B, lt)
    values = np.take_along_axis(step2_min, cand[:, None, :], axis=1)[:, 0, :]

    # Gather the winning candidate's middle and source layers.
    arg_lb = np.take_along_axis(arg_lb_full, cand[:, None, :], axis=1)[:, 0, :]  # (B, lt)
    batch_idx = np.arange(w1.shape[0])[:, None]
    arg_ls = arg_ls_full[batch_idx, cand, arg_lb]  # (B, lt)
    return values, cand, arg_lb, arg_ls


__all__ = [
    "interval_min",
    "combine_children",
    "minplus_vec_mat",
    "minplus_two_bend",
    "zshape_reduce",
]
