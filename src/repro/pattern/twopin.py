"""Two-pin routing tasks, net routing jobs, and wave scheduling.

A *job* is one multi-pin net flowing through the pattern stage: its
Steiner tree, the bottom-up two-pin-net order, and the per-node DP state
the kernels fill in.  A *wave* groups, across every job of a scheduler
batch, the two-pin nets whose child subtrees are already complete — one
wave is one kernel launch on the simulated device (Fig. 7: blocks =
nets, lanes = layer combinations; here lanes also span the batch).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.grid.geometry import Point
from repro.netlist.net import Net
from repro.tree.ordering import OrderedTree
from repro.tree.steiner import SteinerTree


class PatternMode(enum.Enum):
    """Which pattern family routes a two-pin net."""

    LSHAPE = "L"
    ZSHAPE = "Z"
    HYBRID = "H"


@dataclass
class EdgeBacktrack:
    """Per-two-pin-net argmin state for path reconstruction.

    For L-shape: ``bend_choice[lt]`` selects bend 1 or 2 and
    ``arg_ls[lt]`` the source layer.  For Z/hybrid: ``cand[lt]`` selects
    the bend-point pair (indexing ``cand_geometry``), ``arg_lb[lt]`` the
    middle layer, ``arg_ls[lt]`` the source layer.
    """

    mode: PatternMode
    arg_ls: np.ndarray
    bend_choice: Optional[np.ndarray] = None
    cand: Optional[np.ndarray] = None
    arg_lb: Optional[np.ndarray] = None
    cand_geometry: Optional[np.ndarray] = None  # (C, 4): bsx, bsy, btx, bty


@dataclass
class NetRoutingJob:
    """DP state of one multi-pin net moving through the pattern stage."""

    net: Net
    tree: SteinerTree
    ordered: OrderedTree
    node_vectors: Dict[int, np.ndarray] = field(default_factory=dict)
    combine_store: Dict[int, Tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)
    edge_store: Dict[int, EdgeBacktrack] = field(default_factory=dict)
    root_interval: Tuple[int, int] = (0, 0)
    total_cost: float = float("nan")

    def pin_range(self, node: int, n_layers: int) -> Tuple[int, int]:
        """Return ``(pin_lo, pin_hi)`` layer bounds at a tree node.

        The no-pin encoding ``(n_layers, -1)`` makes the constraints
        vacuous in :func:`repro.pattern.kernels.combine_children`.
        """
        layers = self.tree.nodes[node].pin_layers
        if not layers:
            return (n_layers, -1)
        return (min(layers), max(layers))


@dataclass(frozen=True)
class TwoPinTask:
    """One two-pin net inside a wave."""

    job_index: int
    child: int
    parent: int
    src: Point
    dst: Point
    mode: PatternMode

    @property
    def hpwl(self) -> int:
        """Half-perimeter length of the two-pin net's bounding box."""
        return abs(self.src.x - self.dst.x) + abs(self.src.y - self.dst.y)


ModeSelector = Callable[[Point, Point], PatternMode]


def constant_mode(mode: PatternMode) -> ModeSelector:
    """Return a selector that routes every two-pin net with ``mode``."""

    def select(_src: Point, _dst: Point) -> PatternMode:
        return mode

    return select


def build_waves(
    jobs: List[NetRoutingJob], mode_fn: ModeSelector
) -> List[List[TwoPinTask]]:
    """Group all two-pin nets of ``jobs`` into dependency-free waves.

    Wave ``h`` holds every two-pin net whose child subtree has height
    ``h``; all of a task's children appear in strictly earlier waves, so
    each wave is one batched kernel evaluation.
    """
    waves: List[List[TwoPinTask]] = []
    for job_index, job in enumerate(jobs):
        heights = job.ordered.subtree_height()
        for child, parent in job.ordered.two_pin_nets:
            src = job.tree.nodes[child].point
            dst = job.tree.nodes[parent].point
            task = TwoPinTask(job_index, child, parent, src, dst, mode_fn(src, dst))
            level = heights[child]
            while len(waves) <= level:
                waves.append([])
            waves[level].append(task)
    return waves


__all__ = [
    "PatternMode",
    "EdgeBacktrack",
    "NetRoutingJob",
    "TwoPinTask",
    "ModeSelector",
    "constant_mode",
    "build_waves",
]
