"""GPU-friendly 3-D Z-shape pattern routing (Sec. III-E, Fig. 9–10).

A Z path ``Ps -> Bs -> Bt -> Pt`` has two bend points; once the target
bend ``Bt`` is placed on one of the bounding-box edges touching ``Pt``,
the source bend ``Bs`` is determined.  Pure Z-shape offers ``M + N - 2``
candidate bend-point pairs.  Every candidate is one computation flow
(Eq. 11–14) and a merge step (Eq. 10) folds them — all batched, padded
to the widest candidate count.

This module also hosts :func:`route_candidate_wave`, the shared chunked
driver for every candidate-enumeration pattern family; the hybrid shape
(Sec. III-F) plugs its own enumeration into it from
:mod:`repro.pattern.hybrid`.  All array work runs on ``query.backend``;
the driver owns the host↔device boundary.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

import numpy as np

from repro.grid.cost import CostQuery
from repro.pattern.kernels import zshape_reduce
from repro.pattern.twopin import EdgeBacktrack, TwoPinTask

CandidateFn = Callable[[TwoPinTask], np.ndarray]


def zshape_candidates(task: TwoPinTask) -> np.ndarray:
    """Enumerate pure-Z candidate bend-point pairs as a ``(C, 4)`` int array.

    Rows are ``(bs_x, bs_y, bt_x, bt_y)``.  Two families:

    * **HVH** — horizontal, vertical, horizontal: ``Bs = (bx, ys)``,
      ``Bt = (bx, yt)`` for every column ``bx`` of the bounding box
      (``M`` flows; the extreme columns degenerate into L shapes);
    * **VHV** — ``Bs = (xs, by)``, ``Bt = (xt, by)`` for interior rows
      ``by`` only (``N - 2`` flows): the extreme rows duplicate L
      shapes the HVH family already covers, matching the paper's
      ``M + N - 2`` count for the plain Z pattern.
    """
    xs, ys, xt, yt = task.src.x, task.src.y, task.dst.x, task.dst.y
    xlo, xhi = sorted((xs, xt))
    ylo, yhi = sorted((ys, yt))
    rows: List[Tuple[int, int, int, int]] = []
    for bx in range(xlo, xhi + 1):
        rows.append((bx, ys, bx, yt))
    for by in range(ylo + 1, yhi):
        rows.append((xs, by, xt, by))
    if not rows:  # single-column, single-row net: one degenerate flow
        rows.append((xs, ys, xs, ys))
    return np.array(rows, dtype=int)


def route_zshape_wave(
    tasks: List[TwoPinTask],
    combine: np.ndarray,
    query: CostQuery,
    max_chunk_elements: int = 150_000,
) -> Tuple[np.ndarray, List[EdgeBacktrack]]:
    """Price a wave of pure-Z two-pin nets.

    Returns ``(values, backtracks)`` exactly like
    :func:`repro.pattern.lshape.route_lshape_wave`.
    """
    return route_candidate_wave(
        tasks, combine, query, zshape_candidates, max_chunk_elements
    )


def route_candidate_wave(
    tasks: List[TwoPinTask],
    combine: np.ndarray,
    query: CostQuery,
    candidate_fn: CandidateFn,
    max_chunk_elements: int = 150_000,
) -> Tuple[np.ndarray, List[EdgeBacktrack]]:
    """Price a wave of candidate-enumeration two-pin nets.

    ``candidate_fn`` maps a task to its ``(C, 4)`` bend-pair geometry
    (:func:`zshape_candidates`, or the hybrid enumeration).  Work is
    split into chunks bounded by ``max_chunk_elements`` tensor entries
    so a few huge nets cannot blow up memory (the pathology the paper's
    selection technique exists to avoid, Sec. IV-D).
    """
    n_tasks = len(tasks)
    n_layers = query.n_layers
    if n_tasks == 0:
        return np.zeros((0, n_layers)), []

    candidates = [candidate_fn(t) for t in tasks]
    counts = np.array([c.shape[0] for c in candidates])
    values = np.zeros((n_tasks, n_layers))
    backtracks: List[EdgeBacktrack] = [None] * n_tasks  # type: ignore[list-item]

    # Cluster tasks of similar candidate counts to minimise padding.
    order = np.argsort(counts, kind="stable")
    start = 0
    while start < len(order):
        width = int(counts[order[start]])
        stop = start
        while stop < len(order):
            width = max(width, int(counts[order[stop]]))
            size = (stop - start + 1) * width * n_layers * n_layers
            if stop > start and size > max_chunk_elements:
                break
            stop += 1
        chunk = [int(i) for i in order[start:stop]]
        _route_chunk(chunk, tasks, candidates, combine, query, values, backtracks)
        start = stop
    return values, backtracks


def _route_chunk(
    chunk: List[int],
    tasks: List[TwoPinTask],
    candidates: List[np.ndarray],
    combine: np.ndarray,
    query: CostQuery,
    values: np.ndarray,
    backtracks: List[EdgeBacktrack],
) -> None:
    """Evaluate one padded chunk in a single batched reduction."""
    n_layers = query.n_layers
    xp = query.backend
    b = len(chunk)
    width = max(candidates[i].shape[0] for i in chunk)

    # Padded candidate geometry; padding repeats the source point so all
    # padded segments are degenerate (finite cost), masked out by `valid`.
    bsx = np.empty((b, width), dtype=int)
    bsy = np.empty((b, width), dtype=int)
    btx = np.empty((b, width), dtype=int)
    bty = np.empty((b, width), dtype=int)
    valid = np.zeros((b, width), dtype=bool)
    srcx = np.empty((b, width), dtype=int)
    srcy = np.empty((b, width), dtype=int)
    dstx = np.empty((b, width), dtype=int)
    dsty = np.empty((b, width), dtype=int)
    for row, i in enumerate(chunk):
        task, cand = tasks[i], candidates[i]
        count = cand.shape[0]
        bsx[row, :count], bsy[row, :count] = cand[:, 0], cand[:, 1]
        btx[row, :count], bty[row, :count] = cand[:, 2], cand[:, 3]
        bsx[row, count:] = task.src.x
        bsy[row, count:] = task.src.y
        btx[row, count:] = task.src.x
        bty[row, count:] = task.src.y
        valid[row, :count] = True
        srcx[row, :] = task.src.x
        srcy[row, :] = task.src.y
        dstx[row, :count] = task.dst.x
        dsty[row, :count] = task.dst.y
        dstx[row, count:] = task.src.x
        dsty[row, count:] = task.src.y

    flat = lambda a: a.reshape(-1)  # noqa: E731 - local reshaping shorthand
    seg_shape = (b, width, n_layers)
    via_shape = (b, width, n_layers, n_layers)
    seg_first = xp.reshape(
        query.segment_cost_layers(flat(srcx), flat(srcy), flat(bsx), flat(bsy)),
        seg_shape,
    )
    seg_mid = xp.reshape(
        query.segment_cost_layers(flat(bsx), flat(bsy), flat(btx), flat(bty)),
        seg_shape,
    )
    seg_last = xp.reshape(
        query.segment_cost_layers(flat(btx), flat(bty), flat(dstx), flat(dsty)),
        seg_shape,
    )
    via_bs = xp.reshape(query.via_matrix(flat(bsx), flat(bsy)), via_shape)
    via_bt = xp.reshape(query.via_matrix(flat(btx), flat(bty)), via_shape)

    w1 = xp.add(xp.expand_dims(xp.asarray(combine[chunk]), 1), seg_first)  # Eq. 11
    mat2 = xp.add(via_bs, xp.expand_dims(seg_mid, 2))  # Eq. 12
    mat3 = xp.add(via_bt, xp.expand_dims(seg_last, 2))  # Eq. 13
    chunk_values, cand_idx, arg_lb, arg_ls = zshape_reduce(w1, mat2, mat3, valid, xp=xp)
    chunk_values = xp.to_numpy(chunk_values)
    cand_idx = xp.to_numpy(cand_idx)
    arg_lb = xp.to_numpy(arg_lb)
    arg_ls = xp.to_numpy(arg_ls)

    for row, i in enumerate(chunk):
        values[i] = chunk_values[row]
        backtracks[i] = EdgeBacktrack(
            mode=tasks[i].mode,
            arg_ls=arg_ls[row],
            cand=cand_idx[row],
            arg_lb=arg_lb[row],
            cand_geometry=candidates[i],
        )


__all__ = [
    "CandidateFn",
    "route_candidate_wave",
    "route_zshape_wave",
    "zshape_candidates",
]
