"""GPU-friendly pattern routing — the paper's primary contribution.

The 3-D L-shape (Sec. III-D), Z-shape (Sec. III-E) and hybrid-shape
(Sec. III-F) pattern-routing dynamic programs are reformulated into
dense vector/matrix min-plus *computation graph flows* and evaluated in
batch over all nets of a scheduler batch at once (Fig. 7).
"""

from repro.pattern.kernels import (
    combine_children,
    interval_min,
    minplus_two_bend,
    minplus_vec_mat,
    zshape_reduce,
)
from repro.pattern.twopin import PatternMode, TwoPinTask, build_waves
from repro.pattern.batch import BatchPatternRouter
from repro.pattern.cpu_reference import SequentialPatternRouter
from repro.pattern.hybrid import hybrid_candidates, route_hybrid_wave

__all__ = [
    "interval_min",
    "combine_children",
    "minplus_vec_mat",
    "minplus_two_bend",
    "zshape_reduce",
    "PatternMode",
    "TwoPinTask",
    "build_waves",
    "BatchPatternRouter",
    "SequentialPatternRouter",
    "hybrid_candidates",
    "route_hybrid_wave",
]
