"""Sequential pattern routing — the CPU baseline.

This is the algorithm the paper's GPU kernels are measured against
(Table VIII: "9.324x speedup over the sequential algorithm on CPU"):
the same 3-D L/Z/hybrid dynamic programs, evaluated one net at a time
on the pure-scalar ``python`` array backend — every kernel op one
element at a time with plain Python floats.

It is a thin driver over :class:`~repro.pattern.batch.BatchPatternRouter`:
the DP itself lives in the shared kernels, which run unchanged on every
:class:`~repro.backend.ArrayBackend`.  All backend ops are
fixed-association IEEE-754 double add/compare with first-minimum
tie-breaking, so this router and the batched NumPy router must produce
*bit-identical* cost vectors, argmins, and routes — the equivalence
suite asserts exactly that, which is far stronger evidence than the
hand-written scalar DP this module used to carry.

Per-net sequencing is exact, not an approximation: costs are frozen per
batch and jobs are independent under a frozen snapshot, and the INF
masking of padded candidates means batch shapes cannot change winners.
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.backend import ArrayBackend
from repro.grid.cost import CostModel
from repro.grid.graph import GridGraph
from repro.gpu.device import Device
from repro.gpu.zerocopy import ZeroCopyArena
from repro.pattern.batch import BatchPatternRouter
from repro.pattern.twopin import ModeSelector, NetRoutingJob


class SequentialPatternRouter(BatchPatternRouter):
    """Net-by-net pattern routing on the scalar ``python`` backend."""

    def __init__(
        self,
        graph: GridGraph,
        cost_model: Optional[CostModel] = None,
        edge_shift: bool = True,
        device: Optional[Device] = None,
        arena: Optional[ZeroCopyArena] = None,
        max_chunk_elements: int = 150_000,
        backend: Union[str, ArrayBackend] = "python",
        cost_engine: str = "full",
    ) -> None:
        super().__init__(
            graph,
            cost_model=cost_model,
            device=device,
            arena=arena,
            edge_shift=edge_shift,
            max_chunk_elements=max_chunk_elements,
            backend=backend,
            cost_engine=cost_engine,
        )

    def route_jobs(self, jobs: List[NetRoutingJob], mode_fn: ModeSelector) -> None:
        """Fill every job's DP state one net at a time (no batching)."""
        for job in jobs:
            super().route_jobs([job], mode_fn)


__all__ = ["SequentialPatternRouter"]
