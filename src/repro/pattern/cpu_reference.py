"""Sequential scalar pattern routing — the CPU baseline.

This is the algorithm the paper's GPU kernels are measured against
(Table VIII: "9.324x speedup over the sequential algorithm on CPU"):
the same 3-D L/Z/hybrid dynamic programs, evaluated one two-pin net at
a time with plain Python loops over layer combinations.

It doubles as the *test oracle*: tie-breaking in every argmin matches
the batched kernels exactly (first minimum in the same enumeration
order), so for identical inputs both implementations must produce
identical cost vectors, argmins, and final routes — a property the
test suite asserts.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.grid.cost import CostModel, CostQuery
from repro.grid.graph import GridGraph
from repro.grid.route import Route
from repro.netlist.net import Net
from repro.pattern.commit import reconstruct_route
from repro.pattern.twopin import (
    EdgeBacktrack,
    ModeSelector,
    NetRoutingJob,
    PatternMode,
    TwoPinTask,
)
from repro.pattern.zshape import zshape_candidates
from repro.tree.edge_shifting import shift_edges
from repro.tree.ordering import order_tree
from repro.tree.steiner import build_steiner_tree

_UNREACHABLE = 1e18  # mirrors the kernels' finite stand-in for inf sums


class SequentialPatternRouter:
    """Net-by-net, layer-pair-by-layer-pair pattern routing on the CPU."""

    def __init__(
        self,
        graph: GridGraph,
        cost_model: Optional[CostModel] = None,
        edge_shift: bool = True,
    ) -> None:
        self.graph = graph
        self.cost_model = cost_model or CostModel()
        self.query = CostQuery(graph, self.cost_model)
        self.edge_shift = edge_shift

    # ------------------------------------------------------------------ #
    # Public API (mirrors BatchPatternRouter)
    # ------------------------------------------------------------------ #
    def make_job(self, net: Net) -> NetRoutingJob:
        """Plan one net: Steiner tree, edge shifting, intranet order."""
        tree = build_steiner_tree(net)
        if self.edge_shift:
            shift_edges(tree, self.graph)
        return NetRoutingJob(net, tree, order_tree(tree))

    def route_batch(self, nets: List[Net], mode_fn: ModeSelector) -> Dict[str, Route]:
        """Route nets one after another; commit demand; return routes."""
        self.query.rebuild()
        jobs = [self.make_job(net) for net in nets]
        self.route_jobs(jobs, mode_fn)
        routes: Dict[str, Route] = {}
        for job in jobs:
            route = reconstruct_route(job)
            route.commit(self.graph)
            routes[job.net.name] = route
        return routes

    def route_jobs(self, jobs: List[NetRoutingJob], mode_fn: ModeSelector) -> None:
        """Fill every job's DP state sequentially (no batching)."""
        for job in jobs:
            self._route_one(job, mode_fn)

    # ------------------------------------------------------------------ #
    # Per-net dynamic program
    # ------------------------------------------------------------------ #
    def _route_one(self, job: NetRoutingJob, mode_fn: ModeSelector) -> None:
        n_layers = self.graph.n_layers
        for child, parent in job.ordered.two_pin_nets:
            src = job.tree.nodes[child].point
            dst = job.tree.nodes[parent].point
            combine = self._combine(job, child)
            task = TwoPinTask(0, child, parent, src, dst, mode_fn(src, dst))
            if task.mode is PatternMode.LSHAPE:
                values, state = self._lshape(task, combine)
            else:
                values, state = self._zshape(task, combine)
            job.node_vectors[child] = values
            job.edge_store[child] = state

        if job.ordered.n_two_pin_nets > 0:
            root = job.ordered.root
            combine = self._combine(job, root)
            best_ls = min(range(n_layers), key=lambda ls: combine[ls])
            lo_choice, hi_choice = job.combine_store[root]
            job.root_interval = (int(lo_choice[best_ls]), int(hi_choice[best_ls]))
            job.total_cost = float(combine[best_ls])
        else:
            lo, hi = job.pin_range(job.ordered.root, n_layers)
            if hi < 0:
                lo, hi = 0, 0
            job.root_interval = (min(lo, hi), max(lo, hi))
            point = job.tree.nodes[job.ordered.root].point
            job.total_cost = self.query.via_stack_cost(
                point.x, point.y, job.root_interval[0], job.root_interval[1]
            )

    def _combine(self, job: NetRoutingJob, node: int) -> np.ndarray:
        """Scalar Eq. 2: interval-enumerated bottom-children cost."""
        n_layers = self.graph.n_layers
        point = job.tree.nodes[node].point
        pin_lo, pin_hi = job.pin_range(node, n_layers)
        child_vectors = [
            job.node_vectors[g] for g in job.ordered.children(node)
        ]
        best = np.full(n_layers, np.inf)
        lo_choice = np.zeros(n_layers, dtype=int)
        hi_choice = np.zeros(n_layers, dtype=int)
        for ls in range(n_layers):
            need_lo = min(ls, pin_lo)
            need_hi = max(ls, pin_hi)
            for lo in range(0, need_lo + 1):
                for hi in range(need_hi, n_layers):
                    # Sum children first, then add the via stack — the same
                    # floating-point association as the batched kernel, so
                    # tie-breaking is bit-identical.
                    children_total = 0.0
                    for vector in child_vectors:
                        minimum = float(min(vector[lo : hi + 1]))
                        children_total += (
                            minimum if math.isfinite(minimum) else _UNREACHABLE
                        )
                    cost = (
                        self.query.via_stack_cost(point.x, point.y, lo, hi)
                        + children_total
                    )
                    if cost < best[ls]:
                        best[ls] = cost
                        lo_choice[ls] = lo
                        hi_choice[ls] = hi
        job.combine_store[node] = (lo_choice, hi_choice)
        return best

    def _lshape(
        self, task: TwoPinTask, combine: np.ndarray
    ) -> Tuple[np.ndarray, EdgeBacktrack]:
        """Scalar Eq. 1/3: both bends, all (ls, lt) pairs, one at a time."""
        n_layers = self.graph.n_layers
        query = self.query
        src, dst = task.src, task.dst
        bends = ((dst.x, src.y), (src.x, dst.y))
        values = np.full(n_layers, np.inf)
        bend_choice = np.zeros(n_layers, dtype=int)
        arg_ls = np.zeros(n_layers, dtype=int)
        for lt in range(n_layers):
            for bend_idx, (bx, by) in enumerate(bends):
                for ls in range(n_layers):
                    # Association mirrors the batched kernel:
                    # (combine + seg1) + (via + seg2).
                    w1 = combine[ls] + query.wire_segment_cost(
                        ls, src.x, src.y, bx, by
                    )
                    w2 = query.via_stack_cost(
                        bx, by, min(ls, lt), max(ls, lt)
                    ) + query.wire_segment_cost(lt, bx, by, dst.x, dst.y)
                    cost = w1 + w2
                    if cost < values[lt]:
                        values[lt] = cost
                        bend_choice[lt] = bend_idx
                        arg_ls[lt] = ls
        state = EdgeBacktrack(
            mode=PatternMode.LSHAPE, arg_ls=arg_ls, bend_choice=bend_choice
        )
        return values, state

    def _zshape(
        self, task: TwoPinTask, combine: np.ndarray
    ) -> Tuple[np.ndarray, EdgeBacktrack]:
        """Scalar Eq. 8/9/10: every candidate flow, every layer triple."""
        n_layers = self.graph.n_layers
        query = self.query
        src, dst = task.src, task.dst
        geometry = zshape_candidates(task)
        values = np.full(n_layers, np.inf)
        cand = np.zeros(n_layers, dtype=int)
        arg_lb = np.zeros(n_layers, dtype=int)
        arg_ls = np.zeros(n_layers, dtype=int)
        for lt in range(n_layers):
            for c in range(geometry.shape[0]):
                bsx, bsy, btx, bty = (int(v) for v in geometry[c])
                last = query.wire_segment_cost(lt, btx, bty, dst.x, dst.y)
                if math.isinf(last):
                    continue
                for lb in range(n_layers):
                    mid = query.wire_segment_cost(lb, bsx, bsy, btx, bty)
                    if math.isinf(mid):
                        continue
                    via_t = query.via_stack_cost(btx, bty, min(lb, lt), max(lb, lt))
                    mat3 = via_t + last
                    for ls in range(n_layers):
                        # Association mirrors zshape_reduce:
                        # ((combine+seg1) + (via_s+mid)) + (via_t+last).
                        w1 = combine[ls] + query.wire_segment_cost(
                            ls, src.x, src.y, bsx, bsy
                        )
                        mat2 = (
                            query.via_stack_cost(bsx, bsy, min(ls, lb), max(ls, lb))
                            + mid
                        )
                        cost = (w1 + mat2) + mat3
                        if cost < values[lt]:
                            values[lt] = cost
                            cand[lt] = c
                            arg_lb[lt] = lb
                            arg_ls[lt] = ls
        state = EdgeBacktrack(
            mode=task.mode,
            arg_ls=arg_ls,
            cand=cand,
            arg_lb=arg_lb,
            cand_geometry=geometry,
        )
        return values, state


__all__ = ["SequentialPatternRouter"]
