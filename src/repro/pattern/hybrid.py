"""GPU-friendly 3-D hybrid-shape pattern routing (Sec. III-F, Fig. 11).

The hybrid shape unifies Z and L: on top of the pure-Z enumeration it
lets the target bend ``Bt`` coincide with the bounding-box corners (the
VHV extreme rows the pure Z pattern drops), so every L path is also a
hybrid candidate — ``M + N`` flows in total.  The flows themselves are
the Z computation graph (Eq. 11–14); only the enumeration differs, so
the wave driver is :func:`~repro.pattern.zshape.route_candidate_wave`
with :func:`hybrid_candidates` plugged in.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.grid.cost import CostQuery
from repro.pattern.twopin import EdgeBacktrack, TwoPinTask
from repro.pattern.zshape import route_candidate_wave


def hybrid_candidates(task: TwoPinTask) -> np.ndarray:
    """Enumerate hybrid candidate bend-point pairs as a ``(C, 4)`` int array.

    Rows are ``(bs_x, bs_y, bt_x, bt_y)``: the full HVH family over all
    ``M`` bounding-box columns plus the full VHV family over all ``N``
    rows — ``M + N`` flows (Fig. 11), the extreme ones degenerating
    into the two L shapes.
    """
    xs, ys, xt, yt = task.src.x, task.src.y, task.dst.x, task.dst.y
    xlo, xhi = sorted((xs, xt))
    ylo, yhi = sorted((ys, yt))
    rows: List[Tuple[int, int, int, int]] = []
    for bx in range(xlo, xhi + 1):
        rows.append((bx, ys, bx, yt))
    for by in range(ylo, yhi + 1):
        rows.append((xs, by, xt, by))
    return np.array(rows, dtype=int)


def route_hybrid_wave(
    tasks: List[TwoPinTask],
    combine: np.ndarray,
    query: CostQuery,
    max_chunk_elements: int = 150_000,
) -> Tuple[np.ndarray, List[EdgeBacktrack]]:
    """Price a wave of hybrid-shape two-pin nets.

    Returns ``(values, backtracks)`` exactly like
    :func:`repro.pattern.lshape.route_lshape_wave`.
    """
    return route_candidate_wave(
        tasks, combine, query, hybrid_candidates, max_chunk_elements
    )


__all__ = ["hybrid_candidates", "route_hybrid_wave"]
