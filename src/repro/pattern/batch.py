"""Batched pattern routing over scheduler batches (Sec. III-C, Fig. 7).

One :meth:`BatchPatternRouter.route_batch` call is one host-side kernel
invocation sequence for a conflict-free batch of multi-pin nets:

1. build/optimise Steiner trees and bottom-up two-pin orders (the
   pattern-routing *planning* of Fig. 5);
2. freeze edge costs (a :class:`~repro.grid.cost.CostQuery` snapshot —
   exact, because in-batch nets have disjoint bounding boxes);
3. evaluate the two-pin nets wave by wave: per wave one ``combine``
   kernel (Eq. 2) and one L/Z/hybrid kernel (Eq. 7/14);
4. reconstruct routes, commit their demand.

The waves are built ACROSS nets (:func:`~repro.pattern.twopin.build_waves`
groups every job's two-pin tasks by subtree height), so the more nets
one ``route_batch`` call covers, the wider — and fewer — the stacked
kernel launches.  The scheduler exploits exactly this: with
``pattern_batching`` on, :class:`~repro.core.flow.PatternStage` fuses a
whole conflict-free dependency level (size-bucketed by net bounding-box
area) into ONE ``route_batch`` call, one padded cross-net launch per
wave depth instead of one launch sequence per net.

The array substrate is pluggable: ``backend`` selects any registered
:class:`~repro.backend.ArrayBackend` (``"numpy"`` by default,
``"python"`` for the sequential scalar baseline, ``"cupy"`` on CUDA
machines).  The chosen backend is wrapped by
:meth:`~repro.gpu.device.Device.wrap`, so every array op inside a
kernel scope is metered into the simulated device's launch records —
benchmarks report kernel-level speedups from the *actual* op stream,
not hand-derived element formulas.  The
:class:`~repro.gpu.zerocopy.ZeroCopyArena` accounts for the cost/result
traffic the zero-copy technique streams.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.backend import ArrayBackend, get_backend
from repro.grid.cost import CostModel, CostQuery
from repro.grid.graph import GridGraph
from repro.grid.route import Route
from repro.gpu.device import Device
from repro.gpu.zerocopy import ZeroCopyArena
from repro.netlist.net import Net
from repro.pattern.commit import reconstruct_route
from repro.pattern.hybrid import route_hybrid_wave
from repro.pattern.kernels import combine_children
from repro.pattern.lshape import route_lshape_wave
from repro.pattern.twopin import (
    ModeSelector,
    NetRoutingJob,
    PatternMode,
    build_waves,
)
from repro.pattern.zshape import route_zshape_wave
from repro.tree.edge_shifting import shift_edges
from repro.tree.ordering import order_tree
from repro.tree.steiner import build_steiner_tree


class BatchPatternRouter:
    """Routes conflict-free batches of nets with the GPU-friendly DP."""

    def __init__(
        self,
        graph: GridGraph,
        cost_model: Optional[CostModel] = None,
        device: Optional[Device] = None,
        arena: Optional[ZeroCopyArena] = None,
        edge_shift: bool = True,
        max_chunk_elements: int = 150_000,
        backend: Union[str, ArrayBackend] = "numpy",
        cost_engine: str = "full",
    ) -> None:
        self.graph = graph
        self.cost_model = cost_model or CostModel()
        self.device = device or Device()
        base = get_backend(backend) if isinstance(backend, str) else backend
        self.backend_name = base.name
        self.backend = self.device.wrap(base)
        self.query = CostQuery(
            graph, self.cost_model, backend=self.backend, engine=cost_engine
        )
        self.arena = arena or ZeroCopyArena()
        self.edge_shift = edge_shift
        self.max_chunk_elements = max_chunk_elements
        # Optional shared cache of unshifted Steiner topologies (set by
        # the session-aware pattern stage); ``make_job`` consults it.
        self.steiner_cache = None

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def make_job(self, net: Net) -> NetRoutingJob:
        """Plan one net: Steiner tree, edge shifting, intranet order.

        Tree topology is a pure function of the pins, so a session's
        shared Steiner cache can serve it; edge shifting then adapts
        the (private) copy to live demand.
        """
        if self.steiner_cache is not None:
            tree = self.steiner_cache.tree(net)
        else:
            tree = build_steiner_tree(net)
        if self.edge_shift:
            shift_edges(tree, self.graph)
        return NetRoutingJob(net, tree, order_tree(tree))

    def route_batch(
        self,
        nets: List[Net],
        mode_fn: ModeSelector,
        cost_boxes=None,
        cost_reference=None,
        commit: bool = True,
    ) -> Dict[str, Route]:
        """Route a conflict-free batch; commit demand; return routes.

        With ``cost_boxes``/``cost_reference`` the snapshot is masked to
        the batch's bounding boxes (costs elsewhere pinned to the
        stage-start reference) — see
        :meth:`~repro.grid.cost.CostQuery.rebuild`.  The scheduler uses
        this so the batch's DP depends only on demand its conflicting
        predecessors committed, bit for bit.

        With ``commit=False`` the routes are returned *without*
        committing their demand — the ``processes`` policy routes in
        workers and serializes all commits in the parent.
        """
        self.query.rebuild(boxes=cost_boxes, reference=cost_reference)
        self._account_cost_upload()
        jobs = [self.make_job(net) for net in nets]
        self.route_jobs(jobs, mode_fn)
        routes: Dict[str, Route] = {}
        for job in jobs:
            route = reconstruct_route(job)
            if commit:
                route.commit(self.graph)
            routes[job.net.name] = route
        return routes

    def route_jobs(self, jobs: List[NetRoutingJob], mode_fn: ModeSelector) -> None:
        """Run the wave-by-wave DP, filling every job's state in place."""
        n_layers = self.graph.n_layers
        waves = build_waves(jobs, mode_fn)
        for wave in waves:
            combine = self._combine_phase(
                jobs, [(t.job_index, t.child) for t in wave]
            )
            l_rows = [i for i, t in enumerate(wave) if t.mode is PatternMode.LSHAPE]
            z_rows = [i for i, t in enumerate(wave) if t.mode is PatternMode.ZSHAPE]
            h_rows = [i for i, t in enumerate(wave) if t.mode is PatternMode.HYBRID]
            if l_rows:
                tasks = [wave[i] for i in l_rows]
                with self.backend.kernel("lshape", len(tasks), n_layers * n_layers):
                    values, backtracks = route_lshape_wave(
                        tasks, combine[l_rows], self.query
                    )
                self._store_edge_results(jobs, tasks, values, backtracks)
            if z_rows:
                tasks = [wave[i] for i in z_rows]
                with self.backend.kernel("zshape", len(tasks), n_layers**3):
                    values, backtracks = route_zshape_wave(
                        tasks, combine[z_rows], self.query, self.max_chunk_elements
                    )
                self._store_edge_results(jobs, tasks, values, backtracks)
            if h_rows:
                tasks = [wave[i] for i in h_rows]
                with self.backend.kernel("hybrid", len(tasks), n_layers**3):
                    values, backtracks = route_hybrid_wave(
                        tasks, combine[h_rows], self.query, self.max_chunk_elements
                    )
                self._store_edge_results(jobs, tasks, values, backtracks)
        self._root_phase(jobs)

    # ------------------------------------------------------------------ #
    # Phases
    # ------------------------------------------------------------------ #
    def _combine_phase(
        self, jobs: List[NetRoutingJob], nodes: List[Tuple[int, int]]
    ) -> np.ndarray:
        """Combine children costs (Eq. 2) at a wave of tree nodes.

        Stores each node's via-interval argmins in its job and returns
        the ``(B, L)`` combine matrix aligned with ``nodes``.
        """
        n_layers = self.graph.n_layers
        if not nodes:
            return np.zeros((0, n_layers))
        xp = self.backend
        child_rows: List[np.ndarray] = []
        child_node_index: List[int] = []
        xs: List[int] = []
        ys: List[int] = []
        pin_lo: List[int] = []
        pin_hi: List[int] = []
        for b, (job_index, node) in enumerate(nodes):
            job = jobs[job_index]
            for child in job.ordered.children(node):
                child_rows.append(job.node_vectors[child])
                child_node_index.append(b)
            point = job.tree.nodes[node].point
            xs.append(point.x)
            ys.append(point.y)
            lo, hi = job.pin_range(node, n_layers)
            pin_lo.append(lo)
            pin_hi.append(hi)

        child_costs = (
            np.vstack(child_rows) if child_rows else np.zeros((0, n_layers))
        )
        with xp.kernel("combine", len(nodes), n_layers * n_layers):
            via_prefix = self.query.via_prefix_at(np.array(xs), np.array(ys))
            combine, lo_choice, hi_choice = combine_children(
                child_costs,
                np.array(child_node_index, dtype=int),
                len(nodes),
                via_prefix,
                np.array(pin_lo, dtype=int),
                np.array(pin_hi, dtype=int),
                xp=xp,
            )
            combine = xp.to_numpy(combine)
            lo_choice = xp.to_numpy(lo_choice)
            hi_choice = xp.to_numpy(hi_choice)
        for b, (job_index, node) in enumerate(nodes):
            jobs[job_index].combine_store[node] = (lo_choice[b], hi_choice[b])
        return combine

    def _store_edge_results(self, jobs, tasks, values, backtracks) -> None:
        for i, task in enumerate(tasks):
            job = jobs[task.job_index]
            job.node_vectors[task.child] = values[i]
            job.edge_store[task.child] = backtracks[i]

    def _root_phase(self, jobs: List[NetRoutingJob]) -> None:
        """Close each net at its root (Eq. 4): pick the best via stack."""
        n_layers = self.graph.n_layers
        rooted = [
            (i, job.ordered.root)
            for i, job in enumerate(jobs)
            if job.ordered.n_two_pin_nets > 0
        ]
        if rooted:
            combine = self._combine_phase(jobs, rooted)
            for b, (job_index, root) in enumerate(rooted):
                job = jobs[job_index]
                best_ls = int(np.argmin(combine[b]))
                lo_choice, hi_choice = job.combine_store[root]
                job.root_interval = (int(lo_choice[best_ls]), int(hi_choice[best_ls]))
                job.total_cost = float(combine[b, best_ls])
        for job in jobs:
            if job.ordered.n_two_pin_nets == 0:
                lo, hi = job.pin_range(job.ordered.root, n_layers)
                if hi < 0:  # no pins recorded — nothing to connect
                    lo, hi = 0, 0
                job.root_interval = (min(lo, hi), max(lo, hi))
                point = job.tree.nodes[job.ordered.root].point
                job.total_cost = self.query.via_stack_cost(
                    point.x, point.y, job.root_interval[0], job.root_interval[1]
                )

    # ------------------------------------------------------------------ #
    # Transfer accounting
    # ------------------------------------------------------------------ #
    def _account_cost_upload(self) -> None:
        """Record the cost-snapshot upload the device reads per batch.

        The engine reports the deduplicated byte count of the *fresh*
        edges the last rebuild actually rewrote from demand (a masked
        rebuild only refreshes the batch's boxes; overlapping boxes
        are counted once, and in-place restores of a previous batch's
        slab to the device-resident reference are not bus traffic —
        see :meth:`~repro.grid.cost.CostQuery` masked accounting), so
        the zero-copy arena accounts exactly what crosses the bus.  A
        rebuild that moved nothing records no transfer at all — a
        stacked launch reusing the resident slab must not book a
        phantom bus transaction.
        """
        n_bytes = self.query.last_upload_bytes
        if n_bytes:
            self.arena.send(n_bytes)


__all__ = ["BatchPatternRouter"]
